(** Bridge from recorded STM traces ({!Stm_core.Recorder}) to formal
    histories.

    Transactional variables become read/write registers (object id =
    protection-element id = tvar id).  Whole aborted top-level attempts
    are removed — including the events of children that committed inside
    them and their acquire/release events — matching the paper's
    convention of removing all events involving aborted transactions. *)

val attribute_attempts : Stm_core.Recorder.event list -> Stm_core.Recorder.event list
(** The filtering pass: drop every event belonging to an aborted top-level
    attempt.  Trailing releases after a top-level commit or abort are
    attributed to the attempt that just finished. *)

val to_history : Stm_core.Recorder.event list -> History.t

val register_env : init_repr:(int -> int) -> Spec.env
(** Every object is a register whose initial value is the fingerprint
    ({!Stm_core.Recorder.repr_of_value}) of the corresponding tvar's
    initial content. *)
