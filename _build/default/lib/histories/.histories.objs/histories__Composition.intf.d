lib/histories/composition.mli: History Search Spec
