lib/histories/search.mli: Event History Spec
