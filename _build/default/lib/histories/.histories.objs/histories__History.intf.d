lib/histories/history.mli: Event Format Spec
