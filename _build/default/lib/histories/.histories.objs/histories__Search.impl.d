lib/histories/search.ml: Array Event Hashtbl History List Option Spec
