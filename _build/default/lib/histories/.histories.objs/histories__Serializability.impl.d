lib/histories/serializability.ml: Event History List Search
