lib/histories/composition.ml: Event History List Printf Search
