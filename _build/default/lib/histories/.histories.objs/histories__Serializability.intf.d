lib/histories/serializability.mli: History Search Spec
