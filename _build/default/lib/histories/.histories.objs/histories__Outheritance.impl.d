lib/histories/outheritance.ml: Array Composition Event Format History List Option
