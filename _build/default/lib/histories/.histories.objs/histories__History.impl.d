lib/histories/history.ml: Array Event Format Hashtbl List Option Printf Spec
