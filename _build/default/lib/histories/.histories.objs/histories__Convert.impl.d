lib/histories/convert.ml: Event Hashtbl History Int List Map Option Recorder Spec Stm_core
