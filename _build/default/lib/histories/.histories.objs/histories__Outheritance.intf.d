lib/histories/outheritance.mli: Composition Format History
