lib/histories/spec.ml: Event List Printf
