lib/histories/convert.mli: History Spec Stm_core
