lib/histories/event.ml: Format
