(** Outheritance (Definition 4.1): no protection element of a member's
    minimal protected set may be released by the composing process between
    that member's commit and the supremum's commit. *)

val violations : History.t -> Composition.t -> (int * int * int) list
(** [(tx, pe, position)] triples: protection element [pe] of [Pmin(tx)]
    was released at event index [position], before the supremum committed. *)

val satisfies : History.t -> Composition.t -> bool

val pp_violation : Format.formatter -> int * int * int -> unit
