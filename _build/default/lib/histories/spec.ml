(** Serial specifications of objects (Weihl-style, Section II).

    A specification decides which sequences of [(operation, return value)]
    pairs are acceptable sequential behaviour.  We represent it as a state
    machine whose state is a canonical [int list], which makes states
    comparable and hashable — the witness searches of {!Serializability}
    memoise on them. *)

type state = int list

type t = {
  spec_name : string;
  init : state;
  step : state -> Event.op -> int -> state option;
      (** [step s op v] is [Some s'] when applying [op] in state [s] may
          return [v], leading to [s']; [None] when that return value is not
          acceptable sequential behaviour. *)
}

let accepts t pairs =
  let rec go s = function
    | [] -> true
    | (op, v) :: rest -> (
      match t.step s op v with None -> false | Some s' -> go s' rest)
  in
  go t.init pairs

(** Read/write register with initial value [init].  [read()] returns the
    last written value; [write(v)] returns [v] (acknowledgement). *)
let register ~init =
  { spec_name = "register";
    init = [ init ];
    step =
      (fun s op v ->
        match (s, op.Event.name, op.Event.arg) with
        | [ cur ], "read", None -> if v = cur then Some s else None
        | [ _ ], "write", Some a -> if v = a then Some [ a ] else None
        | _ -> None) }

(** Counter starting at 0 whose [inc()] returns the {e new} value — the
    object of the paper's Fig. 3, where three [inc] must return 1, 2, 3 in
    order. *)
let counter =
  { spec_name = "counter";
    init = [ 0 ];
    step =
      (fun s op v ->
        match (s, op.Event.name, op.Event.arg) with
        | [ cur ], "inc", None -> if v = cur + 1 then Some [ v ] else None
        | [ cur ], "read", None -> if v = cur then Some s else None
        | _ -> None) }

(** Integer set: [add x] and [remove x] return 1 when they changed the set
    and 0 otherwise; [contains x] returns membership.  State is the sorted
    element list. *)
let int_set =
  let mem x s = List.exists (fun y -> y = x) s in
  let insert x s = List.sort_uniq compare (x :: s) in
  let delete x s = List.filter (fun y -> y <> x) s in
  { spec_name = "int_set";
    init = [];
    step =
      (fun s op v ->
        match (op.Event.name, op.Event.arg) with
        | "add", Some x ->
          let changed = if mem x s then 0 else 1 in
          if v = changed then Some (insert x s) else None
        | "remove", Some x ->
          let changed = if mem x s then 1 else 0 in
          if v = changed then Some (delete x s) else None
        | "contains", Some x ->
          if v = if mem x s then 1 else 0 then Some s else None
        | _ -> None) }

(** Environment: which specification governs each object id. *)
type env = Event.obj_id -> t

let env_of_list l : env =
 fun obj ->
  match List.assoc_opt obj l with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Spec.env_of_list: no spec for object %d" obj)

(** All objects are registers with initial value [init objd].  This is the
    environment of histories recorded from STM runs, where every object is
    a transactional variable. *)
let all_registers ~init : env = fun obj -> register ~init:(init obj)
