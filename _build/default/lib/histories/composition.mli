(** Compositions (Section III) and the two composability criteria.

    A composition is a consecutive run of committed transactions of one
    process — the children of a composed operation, with the supremum the
    last of them to commit.  The checkers decide the existence of an
    equivalent relax-serial witness history satisfying each criterion by
    exhaustive search ({!Search}). *)

type t = {
  members : int list;  (** committed transactions, in commit order *)
  comp_proc : int;     (** the process that executed them *)
}

val make : History.t -> int list -> (t, string) result
(** Validate the definition: at least two transactions, all committed, all
    by one process, consecutive among that process's committed
    transactions. *)

val make_exn : History.t -> int list -> t
val sup : t -> int
val members : t -> int list
val mem : t -> int -> bool

val strongly_composable :
  ?budget:int -> env:Spec.env -> History.t -> t -> Search.outcome
(** Definition 3.1: a witness exists in which no foreign transaction
    commits between two members — the members form a contiguous block of
    the commit order. *)

val weakly_composable :
  ?budget:int -> env:Spec.env -> History.t -> t -> Search.outcome
(** Definition 3.2: a witness exists in which no foreign transaction that
    operates on an object of member [t]'s kernel commits between [t]'s
    commit and the supremum's commit.  (Transactions are compared by
    commit order, the paper's ≺; this is the reading under which strong
    composability implies weak, as the paper presents them.) *)

val weakly_consistent :
  ?budget:int -> env:Spec.env -> History.t -> t list -> Search.outcome
(** Weak composition-consistency with one shared witness: a single
    serialisation satisfying every composition's weak constraint
    simultaneously.  Strictly stronger than checking each composition
    separately, and the property that catches mutual scenarios (e.g. two
    processes each composing an insertIfAbsent against the other's key)
    where per-composition witnesses exist but cannot coexist. *)
