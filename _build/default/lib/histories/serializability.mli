(** Serializability and relax-serializability (Section II). *)

val serializable : env:Spec.env -> History.t -> bool
(** Strict serializability: a legal {e sequential} history exists whose
    committed operations are equivalent to H's (per-process order
    preserved) and that extends [<H].  Decided by searching transaction
    permutations with legality pruning. *)

val relax_serializable :
  ?budget:int -> env:Spec.env -> History.t -> Search.outcome
(** Relax-serializability (Section II.B): a legal {e relax-serial} history
    equivalent to H with [<H ⊆ <S] exists.  A history that is
    relax-serializable but not serializable "contains relaxed
    transactions" in the paper's terminology. *)
