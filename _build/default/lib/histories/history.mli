(** Histories — finite sequences of events — and the derived notions of
    Section II of the paper: transaction status, the precedence order
    [<H], projections, legality, relax-seriality and minimal protected
    sets.

    The representation is transparent (an event array) so that the sibling
    checker modules can index into positions; treat it as read-only. *)

type t = Event.t array

val of_list : Event.t list -> t
val to_list : t -> Event.t list
val length : t -> int

val events : t -> Event.t list
(** Alias of {!to_list}. *)

val pp : Format.formatter -> t -> unit
(** One numbered event per line. *)

(** {1 Transactions and processes} *)

val proc_of_event : Event.t -> int option
(** The process an event directly names ([None] for operations, which are
    attributed through their transaction). *)

val tx_of_event : Event.t -> int option

val transactions : t -> int list
(** Transactions begun in the history, in begin order. *)

val committed : t -> int list
(** Committed transactions, in commit order. *)

val aborted : t -> int list
val live : t -> int list

val complete : t -> bool
(** No live transactions. *)

val proc_of_tx : t -> int -> int
(** The process that executed the given transaction.
    @raise Invalid_argument if the transaction never began. *)

val procs : t -> int list

val begin_pos : t -> int -> int option
(** Index of the transaction's begin event. *)

val commit_pos : t -> int -> int option

(** {1 Projections} *)

val by_proc : t -> int -> Event.t list
(** [H|p]: events involving process [p], operations attributed through
    their transaction. *)

val ops_on : t -> int -> Event.t list
(** Operation events on one object. *)

val objects : t -> int list
(** Objects that appear in operation events, ascending. *)

val pes : t -> int list
(** Protection elements that appear in acquire/release events. *)

val opseq_on : t -> int -> (Event.op * int) list
(** The paper's [opseq(H|o)]: the (operation, return value) projection of
    the operations on object [o], in history order. *)

val committed_ops : t -> Event.t list
(** [committed-ops(H)]: operation events of committed transactions. *)

(** {1 Precedence} *)

val precedes : t -> int -> int -> bool
(** [precedes h t t'] is [t <H t']: the commit of [t] precedes the begin
    of [t']. *)

val precedence_pairs : t -> (int * int) list
(** All [<H] pairs among committed transactions. *)

val concurrent : t -> int -> int -> bool
(** [t'] begins between [t]'s begin and [t]'s commit. *)

(** {1 Global properties} *)

val legal : env:Spec.env -> t -> bool
(** Every object's committed operation sequence, in history order, is
    acceptable behaviour per its serial specification.  Meaningful for
    (relax-)serial histories. *)

val relax_serial : t -> bool
(** Section II.B: per protection element, acquires and releases alternate
    as matching pairs starting with an acquire. *)

val sequential : t -> bool
(** No two transactions are concurrent. *)

(** {1 Minimal protected sets (Section II.A)} *)

val pmin : t -> int -> int list
(** [pmin h t]: protection elements acquired by [t]'s process during [t]
    whose matching release (the next release by the same process) comes
    after [t]'s commit — or never.  Empty for non-committed transactions. *)

val kernel : t -> int -> int list
(** [ker(t)]: the objects protected by [Pmin(t)] (object ids coincide with
    protection-element ids in this model). *)

(** {1 Well-formedness} *)

val well_formed : t -> (unit, string) result
(** Unique begins; commits/aborts/operations refer to begun transactions
    of the right process; per process, begins and commits/aborts nest like
    brackets (top-level transactions and nested children). *)
