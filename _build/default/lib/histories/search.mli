(** The witness-search engine behind every equivalence-based checker.

    All the paper's "there exists a history S equivalent to H such that…"
    definitions are decided by depth-first search over the interleavings
    of H's per-process event sequences, with per-process order fixed
    (equivalence), [<H ⊆ <S] and protection-element alternation enforced
    online, object legality simulated through the serial specifications,
    and an arbitrary extra predicate supplied by the caller.  Visited
    states are memoised on (positions, object states), which keeps the
    search polynomial-ish on the small histories the tests use. *)

type prepared

exception Budget_exhausted

val prepare : History.t -> prepared
(** Split a complete history (no live transactions; aborted ones removed)
    into per-process sequences and precompute the [<H] constraints.
    @raise Invalid_argument on incomplete histories. *)

val consumed : positions:int array -> int * int -> bool
(** Whether the event at coordinate (slot, index) has been consumed at the
    given positions — the query primitive for [admissible] callbacks. *)

val find_coord : prepared -> (Event.t -> bool) -> (int * int) option
(** Coordinate of the first event satisfying the predicate. *)

val find_last_coord : prepared -> (Event.t -> bool) -> (int * int) option

type outcome =
  | Witness_found
  | No_witness
  | Unknown  (** search budget exhausted before the tree was covered *)

val step_states :
  env:Spec.env ->
  (int * Spec.state) list ->
  int ->
  Event.op ->
  int ->
  (int * Spec.state) list option
(** Advance the per-object specification states by one operation; [None]
    when the return value is not acceptable.  Exposed for the permutation
    search of {!Serializability.serializable}. *)

val exists_witness :
  ?budget:int ->
  ?admissible:(positions:int array -> Event.t -> bool) ->
  env:Spec.env ->
  prepared ->
  outcome
(** Does any interleaving survive all constraints to completion?
    [admissible ~positions e] is consulted before emitting [e] with
    [positions] the per-slot consumption counts; returning [false] prunes
    the branch.  [budget] bounds visited nodes (default 500_000). *)
