open Stm_core

type _ Effect.t += Yield : unit Effect.t

exception Killed_by_scheduler

type outcome = {
  steps : int;
  failures : (int * exn) list;
  killed : int list;
}

let completed o = o.failures = [] && o.killed = []

type choice = {
  ready : int list;
  chosen : int;
}

type proc_state = {
  index : int;
  mutable thunk : (unit -> unit) option;  (* [Some] until first activation *)
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable tls : Obj.t array;
  mutable finished : bool;
  mutable failure : exn option;
}

let handler st =
  { Effect.Deep.retc = (fun () -> st.finished <- true);
    exnc =
      (fun e ->
        st.finished <- true;
        st.failure <- Some e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              st.cont <- Some k;
              st.tls <- Runtime.save_all_tls ())
        | _ -> None) }

let activate st =
  Runtime.restore_all_tls st.tls;
  match (st.cont, st.thunk) with
  | Some k, _ ->
    st.cont <- None;
    Effect.Deep.continue k ()
  | None, Some thunk ->
    st.thunk <- None;
    Effect.Deep.match_with thunk () (handler st)
  | None, None -> invalid_arg "Sched.activate: process already finished"

let kill st =
  match st.cont with
  | None -> ()
  | Some k -> (
    st.cont <- None;
    try Effect.Deep.discontinue k Killed_by_scheduler
    with _ -> ())

let run ?(max_steps = 100_000) ?pick procs =
  let pick =
    match pick with
    | Some f -> f
    | None -> fun ~step ~ready -> step mod List.length ready
  in
  let states =
    List.mapi
      (fun index thunk ->
        { index; thunk = Some thunk; cont = None;
          tls = Runtime.save_all_tls (); finished = false; failure = None })
      procs
    |> Array.of_list
  in
  let current = ref (-1) in
  let saved_yield = !Runtime.yield_hook in
  let saved_proc = !Runtime.proc_hook in
  let saved_simulated = !Runtime.simulated in
  let outer_tls = Runtime.save_all_tls () in
  Runtime.simulated := true;
  Runtime.yield_hook := (fun () -> Effect.perform Yield);
  (Runtime.proc_hook :=
     fun () -> if !current >= 0 then !current else saved_proc ());
  let restore_environment () =
    Runtime.yield_hook := saved_yield;
    Runtime.proc_hook := saved_proc;
    Runtime.simulated := saved_simulated;
    Runtime.restore_all_tls outer_tls;
    current := -1
  in
  let trace = ref [] in
  let steps = ref 0 in
  let killed = ref [] in
  (try
     let rec loop () =
       let ready =
         Array.to_list states
         |> List.filter_map (fun st ->
                if st.finished then None else Some st.index)
       in
       if ready <> [] then
         if !steps >= max_steps then begin
           List.iter
             (fun i ->
               kill states.(i);
               states.(i).finished <- true;
               killed := i :: !killed)
             ready
         end
         else begin
           let chosen = pick ~step:!steps ~ready in
           let chosen = max 0 (min chosen (List.length ready - 1)) in
           trace := { ready; chosen } :: !trace;
           incr steps;
           let st = states.(List.nth ready chosen) in
           current := st.index;
           activate st;
           current := -1;
           loop ()
         end
     in
     loop ()
   with e ->
     restore_environment ();
     raise e);
  restore_environment ();
  let failures =
    Array.to_list states
    |> List.filter_map (fun st ->
           match st.failure with Some e -> Some (st.index, e) | None -> None)
  in
  ( { steps = !steps; failures; killed = List.rev !killed },
    List.rev !trace )

let run_schedule ?max_steps ~schedule procs =
  let schedule = Array.of_list schedule in
  let pick ~step ~ready:_ =
    if step < Array.length schedule then schedule.(step) else 0
  in
  run ?max_steps ~pick procs
