open Stm_core

type scenario = {
  procs : unit -> (unit -> unit) list;
  check : Sched.outcome -> bool;
}

type result =
  | All_ok of { explored : int }
  | Violation of { schedule : int list; explored : int }
  | Out_of_budget of { explored : int }

exception Found of int list
exception Budget

let explore ?(max_runs = 20_000) ?(max_steps = 20_000) ?(retry_cap = 1_000)
    scenario =
  let explored = ref 0 in
  let saved_cap = !Runtime.retry_cap in
  Runtime.retry_cap := retry_cap;
  let run_one schedule =
    if !explored >= max_runs then raise Budget;
    incr explored;
    let procs = scenario.procs () in
    let outcome, trace = Sched.run_schedule ~max_steps ~schedule procs in
    if not (scenario.check outcome) then
      raise (Found (List.map (fun c -> c.Sched.chosen) trace));
    trace
  in
  (* DFS with replay: run the default extension of [prefix], then branch on
     every not-yet-taken alternative at every decision point after the
     prefix. *)
  let rec dfs prefix =
    let trace = run_one prefix in
    let choices = List.map (fun c -> c.Sched.chosen) trace in
    let n_prefix = List.length prefix in
    List.iteri
      (fun i (c : Sched.choice) ->
        if i >= n_prefix then
          for alt = c.chosen + 1 to List.length c.ready - 1 do
            let new_prefix = List.filteri (fun j _ -> j < i) choices @ [ alt ] in
            dfs new_prefix
          done)
      trace
  in
  Fun.protect
    ~finally:(fun () -> Runtime.retry_cap := saved_cap)
    (fun () ->
      match dfs [] with
      | () -> All_ok { explored = !explored }
      | exception Found schedule ->
        Violation { schedule; explored = !explored }
      | exception Budget -> Out_of_budget { explored = !explored })

let sample ?(runs = 1_000) ?(max_steps = 20_000) ?(retry_cap = 1_000)
    ?(seed = 1) scenario =
  let saved_cap = !Runtime.retry_cap in
  Runtime.retry_cap := retry_cap;
  Fun.protect
    ~finally:(fun () -> Runtime.retry_cap := saved_cap)
    (fun () ->
      let rng = ref (seed lor 1) in
      let next () =
        rng := (!rng * 48271) mod 2147483647;
        !rng
      in
      let rec go i =
        if i >= runs then All_ok { explored = runs }
        else begin
          let procs = scenario.procs () in
          let pick ~step:_ ~ready = next () mod List.length ready in
          let outcome, trace = Sched.run ~max_steps ~pick procs in
          if not (scenario.check outcome) then
            Violation
              { schedule = List.map (fun c -> c.Sched.chosen) trace;
                explored = i + 1 }
          else go (i + 1)
        end
      in
      go 0)

let pp_result ppf = function
  | All_ok { explored } ->
    Format.fprintf ppf "all %d interleavings OK" explored
  | Violation { schedule; explored } ->
    Format.fprintf ppf "violation after %d interleavings; schedule = [%s]"
      explored
      (String.concat "; " (List.map string_of_int schedule))
  | Out_of_budget { explored } ->
    Format.fprintf ppf "no violation in %d interleavings (budget reached)"
      explored
