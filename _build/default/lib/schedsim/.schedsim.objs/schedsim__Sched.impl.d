lib/schedsim/sched.ml: Array Effect List Obj Runtime Stm_core
