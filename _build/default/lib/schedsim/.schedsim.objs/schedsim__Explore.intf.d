lib/schedsim/explore.mli: Format Sched
