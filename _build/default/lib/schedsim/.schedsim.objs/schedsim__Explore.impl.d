lib/schedsim/explore.ml: Format Fun List Runtime Sched Stm_core String
