lib/schedsim/sched.mli:
