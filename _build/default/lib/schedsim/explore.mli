(** Exhaustive bounded exploration of interleavings (stateless model
    checking).

    A scenario is rebuilt from scratch for every schedule (fresh tvars,
    fresh processes), executed under {!Sched.run_schedule}, and judged by
    its [check] function.  The explorer enumerates the schedule tree
    depth-first: every scheduling decision with k ready processes is a
    k-way branch point.  This is how the repository demonstrates that
    elastic transactions composed {e without} outheritance admit an
    atomicity violation in {e some} interleaving (Fig. 1), while OE-STM
    admits none in {e any}. *)

type scenario = {
  procs : unit -> (unit -> unit) list;
      (** fresh logical processes (and the state they share) *)
  check : Sched.outcome -> bool;
      (** whether this execution is acceptable; consult shared state
          captured by [procs]'s closure.  Executions with failures can be
          accepted (e.g. starvation is not a safety violation). *)
}

type result =
  | All_ok of { explored : int }
      (** every explored schedule satisfied [check] *)
  | Violation of { schedule : int list; explored : int }
      (** [schedule] (choice indices into the ready list at each step)
          reproduces the violation via {!Sched.run_schedule} *)
  | Out_of_budget of { explored : int }
      (** bound reached before exhausting the tree; no violation found *)

val explore :
  ?max_runs:int -> ?max_steps:int -> ?retry_cap:int -> scenario -> result
(** @param max_runs   bound on the number of schedules (default 20_000)
    @param max_steps  per-run scheduling-point bound (default 20_000)
    @param retry_cap  transaction retry bound during exploration, to turn
                      livelocks into {!Stm_core.Control.Starvation} failures
                      (default 1_000) *)

val sample :
  ?runs:int ->
  ?max_steps:int ->
  ?retry_cap:int ->
  ?seed:int ->
  scenario ->
  result
(** Random-walk alternative to {!explore} for scenarios whose interleaving
    tree is too large to exhaust: each run draws scheduling decisions from
    a seeded PRNG.  [All_ok] here means "no violation in [runs] samples",
    not a proof.  A returned violation's schedule replays through
    {!Sched.run_schedule} exactly like the exhaustive explorer's. *)

val pp_result : Format.formatter -> result -> unit
