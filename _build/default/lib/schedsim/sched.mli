(** Deterministic cooperative scheduler.

    Runs N logical processes on the current domain, context-switching at
    every STM scheduling point ({!Stm_core.Runtime.schedule_point}, invoked
    by all STM implementations before each shared access).  The caller
    chooses which ready process runs at every step, which makes whole-program
    interleavings reproducible and enumerable — the paper's 64-hardware-
    thread concurrency, simulated exactly on one core.

    While a simulation runs, the scheduler owns the runtime hooks
    ({!Stm_core.Runtime.yield_hook}, [proc_hook]) and swaps each STM's
    thread-local state when switching processes, so transactions of
    different logical processes never bleed into each other. *)

type outcome = {
  steps : int;  (** scheduling points executed *)
  failures : (int * exn) list;
      (** processes that ended with an exception (e.g.
          {!Stm_core.Control.Starvation}), by process index *)
  killed : int list;
      (** processes forcibly terminated because [max_steps] was reached *)
}

val completed : outcome -> bool
(** No failures and nobody was killed. *)

type choice = {
  ready : int list;  (** indices of runnable processes, ascending *)
  chosen : int;      (** index {e into [ready]} that was picked *)
}

val run :
  ?max_steps:int ->
  ?pick:(step:int -> ready:int list -> int) ->
  (unit -> unit) list ->
  outcome * choice list
(** [run procs] executes the processes to completion under the scheduling
    policy [pick] (default: round-robin), returning the outcome and the full
    decision trace.  [pick] returns an index into [ready].

    @param max_steps forcibly terminates remaining processes after this many
    scheduling points (default 100_000), recording them in [killed]. *)

val run_schedule :
  ?max_steps:int -> schedule:int list -> (unit -> unit) list -> outcome * choice list
(** Replay a specific schedule: the [n]-th scheduling decision picks
    [List.nth schedule n] (an index into the ready list, clamped); once the
    schedule is exhausted, the lowest ready process is chosen. *)
