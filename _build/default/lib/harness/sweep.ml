(** The measurement driver: throughput (operations per millisecond) and
    abort rate of one target at one thread count, averaged over several
    timed runs — the methodology of Section VII.A (the paper uses 10 runs
    of 10 s; the defaults here are scaled down so the whole matrix runs in
    CI, and the paper settings are a flag away). *)

type point = {
  threads : int;
  ops_per_ms : float;
  abort_rate : float;
  total_ops : int;
  total_commits : int;
  total_aborts : int;
}

let run_point (module T : Target.TARGET) ~cfg ~threads ~duration ~runs ~seed =
  let one_run run_idx =
    T.setup cfg;
    T.reset_stats ();
    let stop = Atomic.make false in
    let ops_done = Array.make threads 0 in
    let barrier = Atomic.make 0 in
    let worker i () =
      let rng =
        Prng.split (Prng.create ~seed:(seed + run_idx)) ~index:i
      in
      ignore (Atomic.fetch_and_add barrier 1);
      while Atomic.get barrier < threads do
        Domain.cpu_relax ()
      done;
      let n = ref 0 in
      while not (Atomic.get stop) do
        T.run_op (Workload.gen_op cfg rng);
        incr n
      done;
      ops_done.(i) <- !n
    in
    let t0 = Unix.gettimeofday () in
    let domains = List.init threads (fun i -> Domain.spawn (worker i)) in
    Unix.sleepf duration;
    Atomic.set stop true;
    List.iter Domain.join domains;
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let ops = Array.fold_left ( + ) 0 ops_done in
    (float_of_int ops /. elapsed_ms, ops)
  in
  let results = List.init runs one_run in
  let throughputs = List.map fst results in
  let total_ops = List.fold_left (fun a (_, n) -> a + n) 0 results in
  let snap = T.abort_snapshot () in
  { threads;
    ops_per_ms =
      List.fold_left ( +. ) 0.0 throughputs /. float_of_int runs;
    abort_rate = Stm_core.Stats.abort_rate snap;
    total_ops;
    total_commits = snap.Stm_core.Stats.commits;
    total_aborts = snap.Stm_core.Stats.aborts }

(** One series: the same target across the thread axis. *)
let run_series (module T : Target.TARGET) ~cfg ~threads ~duration ~runs ~seed =
  List.map
    (fun n -> run_point (module T : Target.TARGET) ~cfg ~threads:n ~duration ~runs ~seed)
    threads
