lib/harness/sweep.ml: Array Atomic Domain List Prng Stm_core Target Unix Workload
