lib/harness/workload.ml: List Printf Prng
