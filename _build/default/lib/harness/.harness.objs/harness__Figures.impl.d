lib/harness/figures.ml: Format Fun List Option Printf Sweep Target Workload
