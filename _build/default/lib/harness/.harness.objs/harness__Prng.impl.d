lib/harness/prng.ml:
