lib/harness/target.ml: Classic_stm Eec Oestm Printf Seqds Stats Stm_core Stm_intf Workload
