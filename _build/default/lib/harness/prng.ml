(** SplitMix64-style deterministic PRNG.

    Each benchmark domain owns an independent stream derived from
    [(run, domain)] so that workloads are reproducible bit-for-bit and
    domains never contend on shared random state. *)

type t = { mutable state : int }

let golden = 0x1E3779B97F4A7C15

let create ~seed = { state = (seed * 2 + 1) land max_int }

let split t ~index = create ~seed:(t.state lxor ((index + 1) * golden))

let next t =
  t.state <- (t.state + golden) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0xBF58476D1CE4E5B lor 1 in
  let z = (z lxor (z lsr 27)) * 0x94D049BB133111E lor 1 in
  (z lxor (z lsr 31)) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  next t mod bound

let float t = float_of_int (next t) /. float_of_int max_int
