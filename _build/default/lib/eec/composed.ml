(** The composed operations of the e.e.c package, built {e only} from the
    primitive set operations by wrapping them in a new transaction — the
    paper's composition pattern (Section VI, Fig. 5).  The code is shared by
    all three data structures: composition does not care what is underneath. *)

module Make
    (S : Stm_core.Stm_intf.S) (Prim : sig
      type t
      type elt

      val contains : t -> elt -> bool
      val add : t -> elt -> bool
      val remove : t -> elt -> bool
    end) =
struct
  (* Like the paper's addAll: a loop of child [add] transactions inside one
     parent transaction.  [fold_left] keeps evaluation order left to right
     and avoids short-circuiting, so every child runs. *)
  let add_all t elts =
    S.atomic ~mode:Elastic (fun _ ->
        List.fold_left (fun changed x -> Prim.add t x || changed) false elts)

  let remove_all t elts =
    S.atomic ~mode:Elastic (fun _ ->
        List.fold_left (fun changed x -> Prim.remove t x || changed) false elts)

  let insert_if_absent t ~ins ~guard =
    S.atomic ~mode:Elastic (fun _ ->
        if Prim.contains t guard then false else Prim.add t ins)

  let move ~src ~dst x =
    S.atomic ~mode:Elastic (fun _ ->
        if Prim.remove src x then begin
          ignore (Prim.add dst x);
          true
        end
        else false)
end
