lib/eec/tx_queue.ml: List Stm_core
