lib/eec/linked_list_set.ml: Composed List Set_intf Sorted_chain Stm_core
