lib/eec/hash_set.ml: Array Composed List Printf Set_intf Sorted_chain Stm_core
