lib/eec/set_intf.ml: Hashtbl Int Stm_core String
