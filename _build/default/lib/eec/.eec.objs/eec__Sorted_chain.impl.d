lib/eec/sorted_chain.ml: List Option Printf Set_intf Stm_core
