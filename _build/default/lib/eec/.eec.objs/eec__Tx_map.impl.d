lib/eec/tx_map.ml: Hash_set Linked_list_set List Set_intf Skip_list_set Stm_core
