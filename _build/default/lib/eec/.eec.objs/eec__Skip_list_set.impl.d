lib/eec/skip_list_set.ml: Array Composed List Printf Set_intf Stm_core
