lib/eec/composed.ml: List Stm_core
