(** LinkedListSet of e.e.c: a sorted singly-linked list.

    Linear traversals make this the structure where elastic transactions
    shine (Fig. 6 of the paper): a classic transaction aborts whenever the
    already-traversed prefix changes, an elastic one only when its
    immediate neighbourhood does. *)

module Make (S : Stm_core.Stm_intf.S) (K : Set_intf.ORDERED) :
  Set_intf.SET with type elt = K.t = struct
  module Chain = Sorted_chain.Make (S) (K)

  type elt = K.t
  type t = { head : Chain.node S.tvar }

  let create () = { head = Chain.new_head () }

  let contains t k =
    S.atomic ~mode:Elastic (fun ctx -> Chain.contains_in ctx t.head k)

  let find_opt t k =
    S.atomic ~mode:Elastic (fun ctx -> Chain.find_in ctx t.head k)

  let add t k = S.atomic ~mode:Elastic (fun ctx -> Chain.add_in ctx t.head k)

  let remove t k =
    S.atomic ~mode:Elastic (fun ctx -> Chain.remove_in ctx t.head k)

  (* Whole-structure reads need a consistent snapshot: regular mode. *)
  let size t =
    S.atomic ~mode:Regular (fun ctx ->
        Chain.fold_in ctx t.head ~init:0 ~f:(fun n _ -> n + 1))

  let to_list t =
    S.atomic ~mode:Regular (fun ctx ->
        List.rev (Chain.fold_in ctx t.head ~init:[] ~f:(fun acc k -> k :: acc)))

  module C =
    Composed.Make
      (S)
      (struct
        type nonrec t = t
        type nonrec elt = elt

        let contains = contains
        let add = add
        let remove = remove
      end)

  let add_all = C.add_all
  let remove_all = C.remove_all
  let insert_if_absent = C.insert_if_absent
  let move = C.move

  let check_invariants t = Chain.check t.head
  let unsafe_preload t keys = Chain.unsafe_build t.head keys
end
