(** Transactional maps — the ConcurrentSkipListMap/ConcurrentHashMap side
    of the package.

    The paper's Section VI motivates e.e.c with methods the JDK cannot make
    atomic ([size] of ConcurrentSkipListMap, bulk operations, ...).  A map
    here is a set of entries compared on their key, each entry carrying its
    value in a tvar of its own, so updating a binding never relinks the
    structure.  Every operation is a transaction and composes like the set
    operations do; [put_all], [remove_all] and [size] are themselves
    compositions of the primitive ones. *)

module type MAP = sig
  type key
  type value
  type t

  val create : unit -> t

  (** {1 Primitive operations} *)

  val get : t -> key -> value option
  val mem : t -> key -> bool

  val put : t -> key -> value -> value option
  (** Bind [key] to [value]; returns the previous binding, if any. *)

  val put_if_absent : t -> key -> value -> value option
  (** Bind only when absent; returns the existing binding otherwise
      (the JDK's [putIfAbsent], atomic). *)

  val remove : t -> key -> value option

  val update : t -> key -> (value option -> value option) -> value option
  (** Atomic read-modify-write of one binding: the function receives the
      current binding and returns the new one ([None] = remove).  Returns
      the previous binding. *)

  (** {1 Composed operations} *)

  val put_all : t -> (key * value) list -> unit
  val remove_all : t -> key list -> bool
  val size : t -> int
  val bindings : t -> (key * value) list
  (** Atomic snapshot, ascending by key. *)

  val check_invariants : t -> (unit, string) result
end

module Make
    (S : Stm_core.Stm_intf.S)
    (Mk : functor (S' : Stm_core.Stm_intf.S) (K : Set_intf.ORDERED) ->
      Set_intf.SET with type elt = K.t)
    (K : Set_intf.ORDERED) (V : sig
      type t
    end) : MAP with type key = K.t and type value = V.t = struct
  type key = K.t
  type value = V.t

  (* Entries compare on the key alone; [slot] is [None] only in probe
     entries used for lookups, never in stored ones. *)
  module Entry = struct
    type t = { key : K.t; slot : V.t S.tvar option }

    let compare a b = K.compare a.key b.key
    let hash e = K.hash e.key
    let to_string e = K.to_string e.key
  end

  module Base = Mk (S) (Entry)

  type t = Base.t

  let create () = Base.create ()
  let probe key = { Entry.key; slot = None }

  let slot_exn (e : Entry.t) =
    match e.slot with
    | Some tv -> tv
    | None -> invalid_arg "Tx_map: stored entry without a slot"

  let read_slot tv = S.atomic ~mode:Elastic (fun ctx -> S.read ctx tv)
  let write_slot tv v = S.atomic ~mode:Elastic (fun ctx -> S.write ctx tv v)

  let get t key =
    S.atomic ~mode:Elastic (fun _ ->
        match Base.find_opt t (probe key) with
        | None -> None
        | Some e -> Some (read_slot (slot_exn e)))

  let mem t key = Base.contains t (probe key)

  let put t key value =
    S.atomic ~mode:Elastic (fun _ ->
        match Base.find_opt t (probe key) with
        | Some e ->
          let tv = slot_exn e in
          let prev = read_slot tv in
          write_slot tv value;
          Some prev
        | None ->
          ignore (Base.add t { Entry.key; slot = Some (S.tvar value) });
          None)

  let put_if_absent t key value =
    S.atomic ~mode:Elastic (fun _ ->
        match Base.find_opt t (probe key) with
        | Some e -> Some (read_slot (slot_exn e))
        | None ->
          ignore (Base.add t { Entry.key; slot = Some (S.tvar value) });
          None)

  let remove t key =
    S.atomic ~mode:Elastic (fun _ ->
        match Base.find_opt t (probe key) with
        | None -> None
        | Some e ->
          let prev = read_slot (slot_exn e) in
          ignore (Base.remove t (probe key));
          Some prev)

  let update t key f =
    S.atomic ~mode:Elastic (fun _ ->
        let previous =
          match Base.find_opt t (probe key) with
          | None -> None
          | Some e -> Some (read_slot (slot_exn e))
        in
        (match f previous with
        | Some v -> ignore (put t key v)
        | None -> if previous <> None then ignore (Base.remove t (probe key)));
        previous)

  let put_all t kvs =
    S.atomic ~mode:Elastic (fun _ ->
        List.iter (fun (k, v) -> ignore (put t k v)) kvs)

  let remove_all t keys =
    S.atomic ~mode:Elastic (fun _ ->
        List.fold_left (fun changed k -> remove t k <> None || changed) false keys)

  let size t = Base.size t

  let bindings t =
    S.atomic ~mode:Regular (fun _ ->
        Base.to_list t
        |> List.map (fun (e : Entry.t) -> (e.key, read_slot (slot_exn e))))

  let check_invariants t = Base.check_invariants t
end

(** The three concrete map flavours, mirroring the sets. *)
module Skip_list (S : Stm_core.Stm_intf.S) (K : Set_intf.ORDERED) (V : sig
  type t
end) =
  Make (S) (Skip_list_set.Make) (K) (V)

module Linked_list (S : Stm_core.Stm_intf.S) (K : Set_intf.ORDERED) (V : sig
  type t
end) =
  Make (S) (Linked_list_set.Make) (K) (V)

module Hash (S : Stm_core.Stm_intf.S) (K : Set_intf.ORDERED) (V : sig
  type t
end) =
  Make (S) (Hash_set.Make) (K) (V)
