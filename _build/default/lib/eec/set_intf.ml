(** Interfaces of the e.e.c package (Section VI).

    Every operation is a transaction of the underlying STM, so operations
    compose: calling them inside another [S.atomic] block makes them child
    transactions of it, and with an STM that satisfies outheritance the
    composite is atomic.  The composed operations provided here
    ([add_all], [remove_all], [insert_if_absent], [move], [size]) are
    themselves written exactly that way — the package-level counterparts of
    the JDK methods whose atomicity java.util.concurrent cannot promise. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int

  val hash : t -> int
  (** Used by the hash set for bucket selection and by the skip list to
      derive tower heights deterministically. *)

  val to_string : t -> string
end

module type SET = sig
  type elt
  type t

  val create : unit -> t

  (** {1 Primitive operations — one transaction each} *)

  val contains : t -> elt -> bool

  val find_opt : t -> elt -> elt option
  (** The stored element that compares equal to the query, if any.  With
      keys whose ordering ignores part of the element (e.g. map entries
      compared on their key), this retrieves the stored payload. *)

  val add : t -> elt -> bool
  (** [true] when the element was absent and has been inserted. *)

  val remove : t -> elt -> bool
  (** [true] when the element was present and has been removed. *)

  (** {1 Composed operations — transactions invoking child transactions} *)

  val add_all : t -> elt list -> bool
  (** Atomically insert every element; [true] if the set changed. *)

  val remove_all : t -> elt list -> bool

  val insert_if_absent : t -> ins:elt -> guard:elt -> bool
  (** Insert [ins] only if [guard] is not present (the paper's
      running example, Fig. 1); atomic as a whole. *)

  val move : src:t -> dst:t -> elt -> bool
  (** Atomically remove from [src] and insert into [dst] — Harris et al.'s
      example of an operation locks and lock-free code cannot compose. *)

  val size : t -> int
  (** Atomic size — the operation the JDK's ConcurrentSkipListMap cannot
      provide atomically. *)

  val to_list : t -> elt list
  (** Atomic snapshot of the contents, ascending. *)

  val check_invariants : t -> (unit, string) result
  (** Structural self-check (sortedness, no duplicates, tower/bucket
      consistency); quiescent use only. *)

  val unsafe_preload : t -> elt list -> unit
  (** Bulk-load elements (deduplicated, any order) without transactions, in
      linear time.  Only valid while no concurrent transactions exist —
      benchmark and test setup. *)
end

module type MAKER = functor (S : Stm_core.Stm_intf.S) (K : ORDERED) ->
  SET with type elt = K.t

module Int_key : ORDERED with type t = int = struct
  type t = int

  let compare = Int.compare

  (* SplitMix64-style finaliser: decorrelates consecutive integers, which
     matters for skip-list tower heights. *)
  let hash x =
    let x = x * 0x9E3779B97F4A7C1 in
    let x = (x lxor (x lsr 30)) * 0xBF58476D1CE4E5B lor 1 in
    let x = (x lxor (x lsr 27)) * 0x94D049BB133111E lor 1 in
    (x lxor (x lsr 31)) land max_int

  let to_string = string_of_int
end

module String_key : ORDERED with type t = string = struct
  type t = string

  let compare = String.compare
  let hash = Hashtbl.hash
  let to_string s = s
end
