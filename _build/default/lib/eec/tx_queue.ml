(** A transactional FIFO queue — the ConcurrentLinkedQueue of the package.

    Section VI.a singles out the JDK queue's "weakly consistent" iterator
    as a symptom of missing composition.  Here iteration ([to_list]),
    [size], and bulk transfers ([drain_into], [transfer_one]) are
    transactions composed from the primitive [enqueue]/[dequeue], so they
    are atomic — and still composable further (a consumer can atomically
    dequeue from two queues, for instance).

    Representation: a singly-linked list of immutable cells.  [head] is
    the link to the next cell to dequeue; [tail] holds the link tvar at
    the end of the list (a tvar containing a tvar), maintained
    transactionally so enqueues are O(1). *)

module Make (S : Stm_core.Stm_intf.S) = struct
  type 'a cell =
    | Nil
    | Cell of { value : 'a; next : 'a cell S.tvar }

  type 'a t = {
    head : 'a cell S.tvar;
    tail : 'a cell S.tvar S.tvar;  (* the link tvar to append to *)
  }

  let create () : 'a t =
    let head = S.tvar Nil in
    { head; tail = S.tvar head }

  let enqueue (t : 'a t) v =
    S.atomic ~mode:Elastic (fun ctx ->
        let last = S.read ctx t.tail in
        (* The recorded tail can lag behind pending appends of this same
           transaction; chase to the true end. *)
        let rec chase (tv : 'a cell S.tvar) =
          match S.read ctx tv with
          | Nil -> tv
          | Cell { next; _ } -> chase next
        in
        let last = chase last in
        let next = S.tvar Nil in
        S.write ctx last (Cell { value = v; next });
        S.write ctx t.tail next)

  let dequeue_opt (t : 'a t) =
    S.atomic ~mode:Elastic (fun ctx ->
        match S.read ctx t.head with
        | Nil -> None
        | Cell { value; next } ->
          S.write ctx t.head (S.read ctx next);
          (* If the queue became empty the tail must point back at head. *)
          (match S.read ctx next with
          | Nil -> S.write ctx t.tail t.head
          | Cell _ -> ());
          Some value)

  let peek_opt (t : 'a t) =
    S.atomic ~mode:Elastic (fun ctx ->
        match S.read ctx t.head with
        | Nil -> None
        | Cell { value; _ } -> Some value)

  let is_empty t = peek_opt t = None

  let fold t ~init ~f =
    S.atomic ~mode:Regular (fun ctx ->
        let rec go acc tv =
          match S.read ctx tv with
          | Nil -> acc
          | Cell { value; next } -> go (f acc value) next
        in
        go init t.head)

  let size t = fold t ~init:0 ~f:(fun n _ -> n + 1)
  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc v -> v :: acc))

  (* Composed operations. *)

  let enqueue_all t vs =
    S.atomic ~mode:Elastic (fun _ -> List.iter (enqueue t) vs)

  let transfer_one ~src ~dst =
    S.atomic ~mode:Elastic (fun _ ->
        match dequeue_opt src with
        | None -> false
        | Some v ->
          enqueue dst v;
          true)

  let drain_into ~src ~dst =
    S.atomic ~mode:Elastic (fun _ ->
        let rec go n = if transfer_one ~src ~dst then go (n + 1) else n in
        go 0)
end
