(** HashSet of e.e.c: a fixed array of buckets, each a sorted transactional
    chain.

    The bucket count is configurable; the paper's Fig. 8 drives it through
    the {e load factor} (elements per bucket), set to 512 to create long
    chains and hence contention — the regime where elastic transactions pay
    off.  [create] uses a moderate default; benchmarks construct via
    [create_with_buckets]. *)

module Make (S : Stm_core.Stm_intf.S) (K : Set_intf.ORDERED) : sig
  include Set_intf.SET with type elt = K.t

  val create_with_buckets : int -> t
  val bucket_count : t -> int
end = struct
  module Chain = Sorted_chain.Make (S) (K)

  type elt = K.t
  type t = { buckets : Chain.node S.tvar array }

  let create_with_buckets n =
    if n <= 0 then invalid_arg "Hash_set.create_with_buckets";
    { buckets = Array.init n (fun _ -> Chain.new_head ()) }

  let create () = create_with_buckets 64
  let bucket_count t = Array.length t.buckets

  let bucket t k = t.buckets.(K.hash k mod Array.length t.buckets)

  let contains t k =
    S.atomic ~mode:Elastic (fun ctx -> Chain.contains_in ctx (bucket t k) k)

  let find_opt t k =
    S.atomic ~mode:Elastic (fun ctx -> Chain.find_in ctx (bucket t k) k)

  let add t k = S.atomic ~mode:Elastic (fun ctx -> Chain.add_in ctx (bucket t k) k)

  let remove t k =
    S.atomic ~mode:Elastic (fun ctx -> Chain.remove_in ctx (bucket t k) k)

  let size t =
    S.atomic ~mode:Regular (fun ctx ->
        Array.fold_left
          (fun acc head -> Chain.fold_in ctx head ~init:acc ~f:(fun n _ -> n + 1))
          0 t.buckets)

  let to_list t =
    S.atomic ~mode:Regular (fun ctx ->
        Array.fold_left
          (fun acc head ->
            Chain.fold_in ctx head ~init:acc ~f:(fun l k -> k :: l))
          [] t.buckets)
    |> List.sort K.compare

  module C =
    Composed.Make
      (S)
      (struct
        type nonrec t = t
        type nonrec elt = elt

        let contains = contains
        let add = add
        let remove = remove
      end)

  let add_all = C.add_all
  let remove_all = C.remove_all
  let insert_if_absent = C.insert_if_absent
  let move = C.move

  let unsafe_preload t keys =
    let n = Array.length t.buckets in
    let per_bucket = Array.make n [] in
    List.iter
      (fun k ->
        let b = K.hash k mod n in
        per_bucket.(b) <- k :: per_bucket.(b))
      keys;
    Array.iteri (fun i ks -> Chain.unsafe_build t.buckets.(i) ks) per_bucket

  let check_invariants t =
    let n = Array.length t.buckets in
    let rec go i =
      if i >= n then Ok ()
      else
        match Chain.check t.buckets.(i) with
        | Error e -> Error (Printf.sprintf "bucket %d: %s" i e)
        | Ok () -> go (i + 1)
    in
    go 0
end
