(* The benchmark harness regenerating the paper's evaluation (Section VII).

   Two parts:

   1. Bechamel micro-benchmarks - one Test.make per (figure, series): the
      single-thread latency of one workload operation for every STM and the
      sequential baseline on each figure's data structure and bulk ratio.
      These give precise per-op costs that the throughput tables cannot.

   2. The figure sweep - multi-domain throughput and abort-rate tables for
      Figures 6(a) through 8(b), in the same format as
      `dune exec bin/figures.exe`.  Defaults are sized to finish in about a
      minute; pass `--skip-sweep` to run only the micro-benchmarks, or use
      bin/figures.exe --full for paper-scale settings. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: micro-benchmarks                                            *)

(* A smaller structure than the sweep (2^10 elements) keeps the per-op
   latency in micro-benchmark range; the relative ordering of the series is
   what matters. *)
let micro_size_exp = 10

let micro_test (figure : Harness.Figures.figure) (module T : Harness.Target.TARGET) =
  let cfg =
    Harness.Workload.paper ~size_exp:micro_size_exp
      ~bulk_ratio:(Harness.Figures.bulk_ratio_of figure) ()
  in
  T.setup cfg;
  let rng = Harness.Prng.create ~seed:7 in
  (* Pre-generate the op stream so generation cost stays out of the
     measured function. *)
  let stream = Array.init 4096 (fun _ -> Harness.Workload.gen_op cfg rng) in
  let idx = ref 0 in
  Test.make
    ~name:(Printf.sprintf "fig%s/%s" (Harness.Figures.short_name figure) T.name)
    (Staged.stage (fun () ->
         let op = stream.(!idx land 4095) in
         incr idx;
         T.run_op op))

let micro_tests figure =
  List.map (micro_test figure)
    (Harness.Target.series_for (Harness.Figures.structure_of figure))

let run_micro () =
  print_endline "## Micro-benchmarks: single-thread latency per operation";
  print_endline "## (one Bechamel test per figure x series; ns per op)";
  let instance = Instance.monotonic_clock in
  let benchmark_cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun figure ->
      Printf.printf "\n%s\n" (Harness.Figures.name figure);
      let tests = micro_tests figure in
      List.iter
        (fun test ->
          let raw = Benchmark.all benchmark_cfg [ instance ] test in
          let results = Analyze.all ols instance raw in
          Hashtbl.iter
            (fun name ols_result ->
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/op\n%!" name est
              | Some ests ->
                Printf.printf "  %-28s %12s\n%!" name
                  (String.concat ","
                     (List.map (Printf.sprintf "%.0f") ests))
              | None -> Printf.printf "  %-28s %12s\n%!" name "n/a")
            results)
        tests)
    Harness.Figures.all

(* ------------------------------------------------------------------ *)
(* Part 2: figure sweep                                                *)

let run_sweep ~figures ~detailed ~json =
  print_endline "\n## Figure sweep: throughput (ops/ms) and abort rate";
  Printf.printf
    "## threads 1,2,4,8 - %d hardware core(s); domains timeslice, so the\n\
     ## absolute scaling is flattened while relative ordering and abort\n\
     ## rates reproduce the paper's shape (see EXPERIMENTS.md)\n%!"
    (Domain.recommended_domain_count ());
  let results =
    List.map
      (fun figure ->
        let r =
          Harness.Figures.run ~size_exp:12 ~threads:[ 1; 2; 4; 8 ]
            ~duration:0.2 ~runs:2 ~seed:42 ~detailed figure
        in
        Format.printf "%a%!" Harness.Figures.pp_result r;
        r)
      figures
  in
  (match json with
  | None -> ()
  | Some file ->
    Harness.Report.write_file file (Harness.Report.report results);
    Printf.printf "## wrote %s\n%!" file);
  results

(* [--compare BASELINE.json]: per-series ops/ms deltas of this run against
   a previously written report.  With [--regress-pct P], exit non-zero if
   any series lost more than P percent; without it, report only. *)
let run_compare ~baseline_file ~regress_pct results =
  match Harness.Compare.load baseline_file with
  | Error msg ->
    Printf.eprintf "## compare: cannot load %s: %s\n" baseline_file msg;
    exit 2
  | Ok baseline ->
    let current = Harness.Report.report results in
    let deltas = Harness.Compare.diff ~baseline ~current in
    Printf.printf "\n## Comparison against %s\n%!" baseline_file;
    if deltas = [] then
      print_endline "## no overlapping (figure, series, threads) points"
    else Format.printf "%a%!" Harness.Compare.pp_table deltas;
    match regress_pct with
    | None -> ()
    | Some threshold_pct ->
      let bad = Harness.Compare.regressions ~threshold_pct deltas in
      if bad <> [] then begin
        Printf.eprintf "## compare: %d series regressed more than %.1f%%\n"
          (List.length bad) threshold_pct;
        List.iter
          (fun d -> Format.eprintf "##   %a@." Harness.Compare.pp_delta d)
          bad;
        exit 1
      end
      else
        Printf.printf "## compare: no series regressed more than %.1f%%\n%!"
          threshold_pct

let () =
  let argv = Sys.argv in
  let skip_sweep = Array.exists (( = ) "--skip-sweep") argv in
  let skip_micro = Array.exists (( = ) "--skip-micro") argv in
  (* [--detailed] leaves the histogram recorders on for the
     micro-benchmarks too: comparing ns/op with and without it measures
     the cost of the metrics layer itself (it should be within noise when
     off — the flag's whole point). *)
  let detailed = Array.exists (( = ) "--detailed") argv in
  (* [--read-heavy] swaps the sweep to the read-dominated linked-list
     series (6a, 6b, 6r) — the workloads most sensitive to per-read
     write-set lookup and read-set validation costs.  CI gates this sweep
     against the committed baseline. *)
  let read_heavy = Array.exists (( = ) "--read-heavy") argv in
  let find_value flag =
    let rec find i =
      if i >= Array.length argv then None
      else if argv.(i) = flag && i + 1 < Array.length argv then
        Some argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let int_value flag =
    Option.map
      (fun v ->
        match int_of_string_opt v with
        | Some n -> n
        | None -> failwith (flag ^ " wants an integer, got " ^ v))
      (find_value flag)
  in
  let float_value flag =
    Option.map
      (fun v ->
        match float_of_string_opt v with
        | Some f -> f
        | None -> failwith (flag ^ " wants a number, got " ^ v))
      (find_value flag)
  in
  let json = find_value "--json" in
  let compare_file = find_value "--compare" in
  let regress_pct = float_value "--regress-pct" in
  (* Global-clock policy (gv1 | gv4 | gv5), recorded in the report config;
     see DESIGN.md §5f for what each variant trades. *)
  Option.iter
    (fun p -> Stm_core.Clock.set_policy (Stm_core.Clock.policy_of_string p))
    (find_value "--clock");
  (* Robustness knobs: contention-manager policy, retry cap, backoff
     window parameters and fault injection.  They configure process-wide
     state before any measurement starts and are recorded in the JSON
     report's "config" object. *)
  Option.iter
    (fun p -> Stm_core.Cm.set_policy (Stm_core.Cm.policy_of_string p))
    (find_value "--cm");
  Option.iter (fun n -> Stm_core.Runtime.retry_cap := n) (int_value "--retry-cap");
  Option.iter
    (fun i -> Stm_core.Backoff.set_defaults ~init:i ())
    (int_value "--backoff-init");
  Option.iter
    (fun m -> Stm_core.Backoff.set_defaults ~max_window:m ())
    (int_value "--backoff-max");
  Option.iter
    (fun spec -> Stm_core.Faults.enable (Stm_core.Faults.parse spec))
    (find_value "--faults");
  (* [--sanitizer] turns Txsan on for the whole run: the benchmark doubles
     as a long soak under real contention.  Numbers are not comparable to
     clean runs (see EXPERIMENTS.md); the run fails on any violation. *)
  let sanitizer = Array.exists (( = ) "--sanitizer") argv in
  if sanitizer then begin
    Stm_core.Sanitizer.enable ();
    print_endline "## sanitizer on: numbers are NOT comparable to clean runs"
  end;
  (* [--recovery] soaks the benchmark with the orphan-lock recovery layer
     armed (registry publishing, heartbeats, steal checks on contended
     reads and lock acquisitions); [--lease-ns] tunes the staleness
     lease.  With no crashing domains it should steal nothing — running
     it under the sanitizer asserts exactly that. *)
  if Array.exists (( = ) "--recovery") argv then begin
    let lease_ns =
      Option.value
        (int_value "--lease-ns")
        ~default:Stm_core.Recovery.default_lease_ns
    in
    Stm_core.Recovery.enable ~lease_ns ();
    Printf.printf "## recovery on: lease %dns\n%!" lease_ns
  end;
  (* [--durability] opens a write-ahead log for the whole run: the sweep
     then measures the per-commit durability-hook overhead (every
     committed write set is scanned against the persistent-id registry).
     The benchmark structures are deliberately not registered, so no
     records are appended — the gate is on the hook's fixed cost, not on
     fsync latency (see EXPERIMENTS.md).  [--wal-path] and
     [--wal-sync-every] configure the log; the JSON report's
     "durability" object records the configuration and counters. *)
  if Array.exists (( = ) "--durability") argv then begin
    let path =
      Option.value (find_value "--wal-path")
        ~default:
          (Filename.concat
             (Filename.get_temp_dir_name ())
             (Printf.sprintf "bench-%d.wal" (Unix.getpid ())))
    in
    let sync_every =
      Option.value (int_value "--wal-sync-every") ~default:1
    in
    Persist.enable ~sync_every ~path ();
    Printf.printf "## durability on: wal=%s sync_every=%d\n%!" path
      sync_every
  end;
  if detailed then Stm_core.Stats.set_detailed true;
  if not skip_micro then run_micro ();
  if not skip_sweep then begin
    let figures =
      if read_heavy then Harness.Figures.read_heavy else Harness.Figures.all
    in
    let results = run_sweep ~figures ~detailed:(detailed || json <> None) ~json in
    Option.iter
      (fun baseline_file -> run_compare ~baseline_file ~regress_pct results)
      compare_file
  end
  else if compare_file <> None then
    prerr_endline "## compare: needs the sweep; drop --skip-sweep";
  if sanitizer then begin
    let n = Stm_core.Sanitizer.violation_count () in
    if n > 0 then begin
      Printf.eprintf "## sanitizer: %d violation(s)\n" n;
      List.iter
        (fun v -> Format.eprintf "##   %a@." Stm_core.Sanitizer.pp_violation v)
        (Stm_core.Sanitizer.violations ());
      exit 1
    end
    else print_endline "## sanitizer: clean"
  end
